//! Quickstart: model an input's dependencies in propositional logic and
//! reduce it with Generalized Binary Reduction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The scenario: an input with six removable pieces. Keeping the parser
//! requires the lexer; keeping either backend requires the IR; and at
//! least one backend must remain whenever the driver is kept — a
//! constraint no dependency *graph* can express, but one clause of
//! propositional logic can.

use lbr::core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance, Oracle};
use lbr::logic::{Clause, Cnf, VarPool, VarSet};

fn main() {
    let mut pool = VarPool::new();
    let lexer = pool.var("lexer");
    let parser = pool.var("parser");
    let ir = pool.var("ir");
    let backend_x86 = pool.var("backend-x86");
    let backend_arm = pool.var("backend-arm");
    let driver = pool.var("driver");

    // The dependency model R_I.
    let mut cnf = Cnf::new(pool.len());
    cnf.add_clause(Clause::edge(parser, lexer)); //        parser ⇒ lexer
    cnf.add_clause(Clause::edge(backend_x86, ir)); //      x86 ⇒ ir
    cnf.add_clause(Clause::edge(backend_arm, ir)); //      arm ⇒ ir
    cnf.add_clause(Clause::edge(driver, parser)); //       driver ⇒ parser
                                                  // driver ⇒ (x86 ∨ arm): the non-graph constraint.
    cnf.add_clause(Clause::implication([driver], [backend_x86, backend_arm]));

    // The black-box predicate: the bug reproduces whenever the driver and
    // the ARM backend are both present.
    let mut bug = |input: &VarSet| input.contains(driver) && input.contains(backend_arm);
    let mut oracle = Oracle::new(&mut bug, 0.0);

    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);
    let outcome =
        generalized_binary_reduction(&instance, &order, &mut oracle, &GbrConfig::default())
            .expect("the input reduces");

    println!(
        "reduced {} pieces to {}:",
        pool.len(),
        outcome.solution.len()
    );
    for v in outcome.solution.iter() {
        println!("  - {}", pool.name(v));
    }
    println!("predicate invocations: {}", oracle.calls());
    assert!(outcome.solution.contains(driver));
    assert!(outcome.solution.contains(backend_arm));
    assert!(
        !outcome.solution.contains(backend_x86),
        "x86 backend removed"
    );
}
