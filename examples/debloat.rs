//! Debloating with the reducer (Section 6 of the paper):
//!
//! > "Given a test suite, we define the black-box predicate … to be true
//! > if all tests pass. This guarantees that the application preserves the
//! > behavior described by the test-suite."
//!
//! ```sh
//! cargo run --release --example debloat
//! ```
//!
//! The "test suite" here checks that a handful of entry-point methods
//! still exist with their real bodies and that the program decompiles to
//! compiling source — everything unreachable from those entry points is
//! bloat and gets removed.

use lbr::classfile::program_byte_size;
use lbr::core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance, Oracle};
use lbr::decompiler::{compile, decompile_program, BugSet};
use lbr::jreduce::{build_model, reduce_program, Item};
use lbr::logic::VarSet;
use lbr::workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 77,
        classes: 36,
        interfaces: 9,
        plant: vec![], // a healthy application this time
        ..WorkloadConfig::default()
    });
    println!(
        "application: {} classes, {} bytes",
        program.len(),
        program_byte_size(&program)
    );

    let model = build_model(&program).expect("application verifies");
    let registry = model.registry.clone();

    // The "test suite": three entry points whose behavior must survive.
    let entry_points = ["Cls0", "Cls1", "Cls2"];
    let mut required = Vec::new();
    for class in program.classes() {
        if entry_points.contains(&class.name.as_str()) {
            for m in &class.methods {
                if !m.is_init() && m.code.is_some() && !m.flags.is_static() {
                    required.push(
                        registry
                            .var(&Item::MethodCode(
                                class.name.clone(),
                                m.name.clone(),
                                m.desc.descriptor(),
                            ))
                            .expect("registered"),
                    );
                }
            }
        }
    }
    println!("test suite pins {} method bodies", required.len());

    let mut tests_pass = |keep: &VarSet| {
        if !required.iter().all(|v| keep.contains(*v)) {
            return false; // a pinned behavior was removed
        }
        // The whole (reduced) application must still build: decompile with
        // a *correct* decompiler and recompile.
        let candidate = reduce_program(&program, &registry, keep);
        let source = decompile_program(&candidate, &BugSet::none());
        compile(&source).is_empty()
    };
    let mut oracle = Oracle::new(&mut tests_pass, 0.0);

    let order = closure_size_order(&model.cnf);
    let instance = Instance::over_all_vars(model.cnf.clone());
    let outcome =
        generalized_binary_reduction(&instance, &order, &mut oracle, &GbrConfig::default())
            .expect("debloating succeeds");

    let debloated = reduce_program(&program, &registry, &outcome.solution);
    println!(
        "debloated: {} classes, {} bytes ({:.1}% of the input), {} tool runs",
        debloated.len(),
        program_byte_size(&debloated),
        100.0 * program_byte_size(&debloated) as f64 / program_byte_size(&program) as f64,
        oracle.calls(),
    );
    assert!(lbr::classfile::verify_program(&debloated).is_empty());
    for entry in entry_points {
        assert!(debloated.get(entry).is_some(), "{entry} must survive");
    }
}
