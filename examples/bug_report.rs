//! From failing benchmark to bug report: reduce per error and emit, for
//! the smallest witness, everything a decompiler maintainer needs —
//! the surviving class files (disassembled), the decompiler's broken
//! output, and the compiler error it causes.
//!
//! ```sh
//! cargo run --release --example bug_report
//! ```

use lbr::classfile::disassemble_program;
use lbr::decompiler::{decompile_program, BugSet, DecompilerOracle};
use lbr::jreduce::{build_model, reduce_program};
use lbr::logic::VarSet;
use lbr::workload::{generate, WorkloadConfig};

fn main() {
    let program = generate(&WorkloadConfig {
        seed: 404,
        classes: 36,
        interfaces: 9,
        plant: BugSet::decompiler_c().kinds().to_vec(),
        ..WorkloadConfig::default()
    });
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_c());
    assert!(oracle.is_failing());
    println!(
        "decompiler C fails on this {}-class input with {} errors; reducing each …\n",
        program.len(),
        oracle.error_count()
    );

    let report =
        lbr::jreduce::run_per_error(&program, &oracle, 33.0).expect("per-error reduction succeeds");
    let (error, size) = report
        .errors
        .iter()
        .min_by_key(|(_, s)| s.bytes)
        .expect("at least one error");
    println!(
        "smallest witness: {} classes, {} bytes, for:",
        size.classes, size.bytes
    );
    println!("  {error}\n");

    // Re-derive that witness to render the report.
    let model = build_model(&program).expect("valid input");
    let order = lbr::core::closure_size_order(&model.cnf);
    let instance = lbr::core::Instance::over_all_vars(model.cnf.clone());
    let registry = &model.registry;
    let mut predicate = |keep: &VarSet| {
        oracle
            .errors(&reduce_program(&program, registry, keep))
            .contains(error)
    };
    let outcome = lbr::core::generalized_binary_reduction(
        &instance,
        &order,
        &mut predicate,
        &lbr::core::GbrConfig::default(),
    )
    .expect("reduces");
    let witness = reduce_program(&program, registry, &outcome.solution);

    println!("=== attached input (disassembled) ===");
    print!("{}", disassemble_program(&witness));
    println!("=== decompiler C's output on it ===");
    let broken = decompile_program(&witness, &BugSet::decompiler_c());
    print!("{}", broken.render());
    println!("=== compiler says ===");
    for e in lbr::decompiler::compile(&broken) {
        println!("  {e}");
    }
}
