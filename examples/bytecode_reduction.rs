//! Full bytecode reduction: generate an NJR-like benchmark, break it with
//! a buggy decompiler, and compare the logical reducer with J-Reduce.
//!
//! ```sh
//! cargo run --release --example bytecode_reduction
//! ```

use lbr::classfile::program_byte_size;
use lbr::decompiler::{decompile_program, BugSet, DecompilerOracle};
use lbr::jreduce::{build_model, run_reduction};
use lbr::workload::{generate, WorkloadConfig};

fn main() {
    // A benchmark: a modular program with a few decompiler-bug triggers
    // planted in its first clusters.
    let config = WorkloadConfig {
        seed: 2024,
        classes: 48,
        interfaces: 12,
        plant: BugSet::decompiler_a().kinds().to_vec(),
        ..WorkloadConfig::default()
    };
    let program = generate(&config);
    println!(
        "input: {} classes, {} bytes",
        program.len(),
        program_byte_size(&program)
    );

    let model = build_model(&program).expect("the input verifies");
    let stats = model.stats();
    println!(
        "model: {} reducible items, {} clauses, {:.1}% graph constraints",
        stats.items,
        stats.clauses,
        100.0 * stats.graph_fraction
    );

    // The tool: decompiler A (cast, pattern-match, constructor and
    // super-interface bugs).
    let oracle = DecompilerOracle::new(&program, BugSet::decompiler_a());
    println!(
        "\nbaseline: {} compiler errors, e.g.:",
        oracle.error_count()
    );
    for e in oracle.baseline().iter().take(4) {
        println!("  {e}");
    }

    for strategy in ["jreduce", "logical/greedy"] {
        let report = run_reduction(&program, &oracle, strategy, 33.0)
            .unwrap_or_else(|e| panic!("{strategy}: {e}"));
        println!(
            "\n{}: {} → {} classes, {} → {} bytes ({:.1}%), {} tool runs (modeled {:.0}s)",
            report.strategy,
            report.initial.classes,
            report.final_metrics.classes,
            report.initial.bytes,
            report.final_metrics.bytes,
            100.0 * report.relative_bytes(),
            report.predicate_calls,
            report.modeled_secs,
        );
        assert!(report.errors_preserved && report.still_valid);
        if strategy.starts_with("logical/") {
            let source = decompile_program(&report.reduced, &BugSet::none());
            println!(
                "decompiled reduced program: {} source lines",
                source.line_count()
            );
        }
    }
}
