//! Trace-guided determinism: the trace store is a pure memo. A warm
//! store answers repeated probes without re-running the tool, but the
//! probe sequence, the trace digest, and the reduced bytes must be
//! bit-identical to a cold run — under both frontends.

use lbr::core::{Input, InputOracle, MemoryCache};
use lbr::jreduce::{check_report, ReductionSession};
use lbr::workload::{stack_suite, suite, SuiteConfig};

fn assert_cold_equals_warm<I: Input, O: InputOracle<I>>(name: &str, input: &I, oracle: &O) {
    let store = MemoryCache::new();
    let cold = ReductionSession::new(input, oracle)
        .strategy("logical/trace-guided")
        .cache(&store)
        .run()
        .unwrap_or_else(|e| panic!("{name}: cold run: {e}"));
    check_report(&cold).unwrap_or_else(|e| panic!("{name}: cold report: {e}"));
    assert!(
        !store.is_empty(),
        "{name}: cold run must populate the store"
    );

    let warm = ReductionSession::new(input, oracle)
        .strategy("logical/trace-guided")
        .cache(&store)
        .run()
        .unwrap_or_else(|e| panic!("{name}: warm run: {e}"));
    check_report(&warm).unwrap_or_else(|e| panic!("{name}: warm report: {e}"));
    assert!(
        store.hits() > 0,
        "{name}: warm run must be served from the trace store"
    );

    assert_eq!(
        cold.reduced.to_bytes(),
        warm.reduced.to_bytes(),
        "{name}: reduced bytes must not depend on store temperature"
    );
    assert_eq!(
        cold.trace.digest(),
        warm.trace.digest(),
        "{name}: trace digests must match cold vs warm"
    );
    assert!(
        cold.trace.same_probe_sequence(&warm.trace),
        "{name}: probe sequences must be identical cold vs warm"
    );
    assert_eq!(cold.predicate_calls, warm.predicate_calls, "{name}: calls");

    // A store-less run is the third corner of the contract: attaching a
    // store must change nothing observable either.
    let bare = ReductionSession::new(input, oracle)
        .strategy("logical/trace-guided")
        .run()
        .unwrap_or_else(|e| panic!("{name}: bare run: {e}"));
    assert_eq!(bare.reduced.to_bytes(), cold.reduced.to_bytes(), "{name}");
    assert_eq!(bare.trace.digest(), cold.trace.digest(), "{name}");
}

#[test]
fn classfile_trace_guided_cold_vs_warm_store_is_bit_identical() {
    let benchmarks = suite(&SuiteConfig {
        seed: 11,
        programs: 1,
        scale: 0.5,
    });
    assert!(!benchmarks.is_empty());
    for b in benchmarks.iter().take(2) {
        let oracle = b.oracle();
        assert_cold_equals_warm(&b.name, &b.program, &oracle);
    }
}

#[test]
fn stackvm_trace_guided_cold_vs_warm_store_is_bit_identical() {
    let benchmarks = stack_suite(9, 2);
    assert!(!benchmarks.is_empty());
    for b in &benchmarks {
        let oracle = b.oracle();
        assert_cold_equals_warm(&b.name, &b.module, &oracle);
    }
}
