//! Randomized property tests over the full stack, driven by the
//! workspace's internal seeded PRNG (offline, reproducible per seed).
//!
//! * binary round-trip: any generated program survives
//!   `write_program`/`read_program` unchanged;
//! * the bytecode Theorem 3.1: any model of the generated dependency
//!   constraints reduces to a program that still verifies;
//! * logical substrate: formula ↔ CNF equisatisfiability and model
//!   counting vs brute force on arbitrary formulas.

use lbr::classfile::{read_program, write_program};
use lbr::jreduce::{build_model, reduce_program};
use lbr::logic::{count_models, dpll, Formula, Lit, Var, VarOrder, VarSet};
use lbr::workload::{generate, WorkloadConfig};
use lbr_prng::SplitMix64;

// ----------------------------------------------------------------------
// Random formulas for the logic substrate.
// ----------------------------------------------------------------------

fn rand_formula(rng: &mut SplitMix64, nvars: u32, depth: u32) -> Formula {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..4u32) {
            0 | 1 => Formula::var(Var::new(rng.gen_range(0..nvars))),
            2 => Formula::tt(),
            _ => Formula::ff(),
        };
    }
    let children = |rng: &mut SplitMix64| -> Vec<Formula> {
        (0..rng.gen_range(0..3usize))
            .map(|_| rand_formula(rng, nvars, depth - 1))
            .collect()
    };
    match rng.gen_range(0..4u32) {
        0 => Formula::and(children(rng)),
        1 => Formula::or(children(rng)),
        2 => Formula::not(rand_formula(rng, nvars, depth - 1)),
        _ => {
            let a = rand_formula(rng, nvars, depth - 1);
            let b = rand_formula(rng, nvars, depth - 1);
            a.implies(b)
        }
    }
}

fn assignments(n: u32) -> impl Iterator<Item = VarSet> {
    (0..(1u64 << n)).map(move |bits| {
        let mut s = VarSet::empty(n as usize);
        for i in 0..n {
            if bits >> i & 1 == 1 {
                s.insert(Var::new(i));
            }
        }
        s
    })
}

#[test]
fn formula_and_cnf_agree() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let f = rand_formula(&mut rng, 6, 4);
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(6);
        for s in assignments(6) {
            assert_eq!(f.eval(&s), cnf.eval(&s), "seed {seed} at {s:?}");
        }
    }
}

#[test]
fn model_count_matches_brute_force() {
    for seed in 100..164u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let f = rand_formula(&mut rng, 5, 4);
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(5);
        let brute = assignments(5).filter(|s| cnf.eval(s)).count() as u128;
        assert_eq!(count_models(&cnf), brute, "seed {seed}");
    }
}

#[test]
fn msa_returns_models_iff_satisfiable() {
    for seed in 200..264u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let f = rand_formula(&mut rng, 6, 4);
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(6);
        let order = VarOrder::natural(6);
        let sat = assignments(6).any(|s| cnf.eval(&s));
        for strategy in lbr::logic::MsaStrategy::ALL {
            match lbr::logic::msa(&cnf, &order, strategy) {
                Some(model) => {
                    assert!(
                        sat,
                        "seed {seed}: {strategy:?} found a model of an unsat formula"
                    );
                    assert!(
                        cnf.eval(&model),
                        "seed {seed}: {strategy:?} returned a non-model"
                    );
                }
                None => assert!(!sat, "seed {seed}: {strategy:?} missed a model"),
            }
        }
    }
}

// ----------------------------------------------------------------------
// VarSet algebra laws.
// ----------------------------------------------------------------------

fn rand_varset(rng: &mut SplitMix64, universe: usize) -> VarSet {
    let n = rng.gen_range(0..universe);
    VarSet::from_iter_with_universe(
        universe,
        (0..n).map(|_| Var::new(rng.gen_range(0..universe as u32))),
    )
}

#[test]
fn varset_algebra_laws() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let a = rand_varset(&mut rng, 96);
        let b = rand_varset(&mut rng, 96);
        let c = rand_varset(&mut rng, 96);
        // Commutativity and associativity of union/intersection.
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Absorption and De Morgan-ish difference laws.
        assert_eq!(a.union(&a.intersection(&b)), a.clone());
        assert_eq!(a.difference(&b).intersection(&b), VarSet::empty(96));
        assert_eq!(a.difference(&b).union(&a.intersection(&b)), a.clone());
        // Cardinality bookkeeping.
        assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // Subset/disjoint coherence.
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.difference(&b).is_disjoint(&b));
        // Ordered iteration round-trips.
        let back = VarSet::from_iter_with_universe(96, a.iter());
        assert_eq!(back, a);
    }
}

// ----------------------------------------------------------------------
// Full-stack properties over generated programs.
// ----------------------------------------------------------------------

#[test]
fn programs_roundtrip_through_the_binary_format() {
    for case in 0..12u64 {
        let mut rng = SplitMix64::seed_from_u64(case);
        let seed = rng.gen_range(0..1000u64);
        let program = generate(&WorkloadConfig {
            seed,
            plant: lbr::decompiler::BugKind::ALL.to_vec(),
            ..WorkloadConfig::default()
        });
        let bytes = write_program(&program);
        let back = read_program(&bytes).expect("container decodes");
        assert_eq!(back, program, "seed {seed}");
    }
}

#[test]
fn bytecode_theorem_models_reduce_to_verifying_programs() {
    for case in 100..112u64 {
        let mut rng = SplitMix64::seed_from_u64(case);
        let seed = rng.gen_range(0..1000u64);
        let program = generate(&WorkloadConfig {
            seed,
            classes: 10,
            interfaces: 4,
            plant: vec![lbr::decompiler::BugKind::CastToObject],
            ..WorkloadConfig::default()
        });
        let model = build_model(&program).expect("valid input");
        let n = model.registry.len();
        // Probe several models: different rotations and one forced item.
        for probe in 0..6u32 {
            let rotation = (probe as usize * 7) % n;
            let order = VarOrder::from_permutation(
                (0..n as u32)
                    .map(|i| Var::new((i + rotation as u32) % n as u32))
                    .collect(),
            );
            let forced = Lit::pos(Var::new((probe as usize * 13 % n) as u32));
            if let Some((solution, _)) = dpll::solve_with_assumptions(&model.cnf, &order, &[forced])
            {
                let reduced = reduce_program(&program, &model.registry, &solution);
                let errors = lbr::classfile::verify_program(&reduced);
                assert!(
                    errors.is_empty(),
                    "seed {seed} probe {probe}: invalid reduction: {errors:?}"
                );
            }
        }
    }
}
