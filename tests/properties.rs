//! Property-based tests (proptest) over the full stack.
//!
//! * binary round-trip: any generated program survives
//!   `write_program`/`read_program` unchanged;
//! * the bytecode Theorem 3.1: any model of the generated dependency
//!   constraints reduces to a program that still verifies;
//! * logical substrate: formula ↔ CNF equisatisfiability and model
//!   counting vs brute force on arbitrary formulas.

use lbr::classfile::{read_program, write_program};
use lbr::jreduce::{build_model, reduce_program};
use lbr::logic::{count_models, dpll, Formula, Lit, Var, VarOrder, VarSet};
use lbr::workload::{generate, WorkloadConfig};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// Random formulas for the logic substrate.
// ----------------------------------------------------------------------

fn arb_formula(nvars: u32) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(|i| Formula::var(Var::new(i))),
        Just(Formula::tt()),
        Just(Formula::ff()),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Formula::and),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Formula::or),
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

fn assignments(n: u32) -> impl Iterator<Item = VarSet> {
    (0..(1u64 << n)).map(move |bits| {
        let mut s = VarSet::empty(n as usize);
        for i in 0..n {
            if bits >> i & 1 == 1 {
                s.insert(Var::new(i));
            }
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn formula_and_cnf_agree(f in arb_formula(6)) {
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(6);
        for s in assignments(6) {
            prop_assert_eq!(f.eval(&s), cnf.eval(&s), "at {:?}", s);
        }
    }

    #[test]
    fn model_count_matches_brute_force(f in arb_formula(5)) {
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(5);
        let brute = assignments(5).filter(|s| cnf.eval(s)).count() as u128;
        prop_assert_eq!(count_models(&cnf), brute);
    }

    #[test]
    fn msa_returns_models_iff_satisfiable(f in arb_formula(6)) {
        let mut cnf = f.to_cnf();
        cnf.ensure_vars(6);
        let order = VarOrder::natural(6);
        let sat = assignments(6).any(|s| cnf.eval(&s));
        for strategy in lbr::logic::MsaStrategy::ALL {
            match lbr::logic::msa(&cnf, &order, strategy) {
                Some(model) => {
                    prop_assert!(sat, "{strategy:?} found a model of an unsat formula");
                    prop_assert!(cnf.eval(&model), "{strategy:?} returned a non-model");
                }
                None => prop_assert!(!sat, "{strategy:?} missed a model"),
            }
        }
    }
}

// ----------------------------------------------------------------------
// VarSet algebra laws.
// ----------------------------------------------------------------------

fn arb_varset(universe: usize) -> impl Strategy<Value = VarSet> {
    prop::collection::vec(0..universe as u32, 0..universe).prop_map(move |vars| {
        VarSet::from_iter_with_universe(universe, vars.into_iter().map(Var::new))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varset_algebra_laws(a in arb_varset(96), b in arb_varset(96), c in arb_varset(96)) {
        // Commutativity and associativity of union/intersection.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // Absorption and De Morgan-ish difference laws.
        prop_assert_eq!(a.union(&a.intersection(&b)), a.clone());
        prop_assert_eq!(a.difference(&b).intersection(&b), VarSet::empty(96));
        prop_assert_eq!(
            a.difference(&b).union(&a.intersection(&b)),
            a.clone()
        );
        // Cardinality bookkeeping.
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
        // Subset/disjoint coherence.
        prop_assert!(a.intersection(&b).is_subset(&a));
        prop_assert!(a.difference(&b).is_disjoint(&b));
        // Ordered iteration round-trips.
        let back = VarSet::from_iter_with_universe(96, a.iter());
        prop_assert_eq!(back, a);
    }
}

// ----------------------------------------------------------------------
// Full-stack properties over generated programs.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn programs_roundtrip_through_the_binary_format(seed in 0u64..1000) {
        let program = generate(&WorkloadConfig {
            seed,
            plant: lbr::decompiler::BugKind::ALL.to_vec(),
            ..WorkloadConfig::default()
        });
        let bytes = write_program(&program);
        let back = read_program(&bytes).expect("container decodes");
        prop_assert_eq!(back, program);
    }

    #[test]
    fn bytecode_theorem_models_reduce_to_verifying_programs(seed in 0u64..1000) {
        let program = generate(&WorkloadConfig {
            seed,
            classes: 10,
            interfaces: 4,
            plant: vec![lbr::decompiler::BugKind::CastToObject],
            ..WorkloadConfig::default()
        });
        let model = build_model(&program).expect("valid input");
        let n = model.registry.len();
        // Probe several models: different rotations and one forced item.
        for probe in 0..6u32 {
            let rotation = (probe as usize * 7) % n;
            let order = VarOrder::from_permutation(
                (0..n as u32)
                    .map(|i| Var::new((i + rotation as u32) % n as u32))
                    .collect(),
            );
            let forced = Lit::pos(Var::new((probe as usize * 13 % n) as u32));
            if let Some((solution, _)) =
                dpll::solve_with_assumptions(&model.cnf, &order, &[forced])
            {
                let reduced = reduce_program(&program, &model.registry, &solution);
                let errors = lbr::classfile::verify_program(&reduced);
                prop_assert!(
                    errors.is_empty(),
                    "seed {seed} probe {probe}: invalid reduction: {errors:?}"
                );
            }
        }
    }
}
