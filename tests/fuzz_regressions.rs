//! Replays previously-shrunk fuzzing cases from `tests/fuzz_regressions/`.
//!
//! Each file was produced by the `fuzz` binary's ddmin shrinker when a
//! campaign found an invariant violation, and is pinned here so the
//! behavior never regresses silently:
//!
//! - `i5_ddmin_beats_gbr.json` — the case that proved strict "GBR ≤ ddmin"
//!   is not a theorem (ddmin won by 38 bytes), which demoted invariant I5
//!   to a 25% regression tripwire. It must replay clean.
//! - `broken_oracle_catch_{a,b}.json` — shrunk cases with the deliberately
//!   lying oracle armed (`break_oracle: true`). The harness must still
//!   *catch* the planted I1 violation on them; if these ever replay clean,
//!   the fuzzer has lost its ability to detect unsound reductions.

use lbr_fuzz::{FuzzCase, Harness};
use std::path::{Path, PathBuf};

fn regression_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_regressions")
}

/// Replays one pinned case without the daemon progression (the recorded
/// violations are all reproducible in-process; skipping the daemon keeps
/// the test fast).
fn replay(name: &str) -> lbr_fuzz::CaseOutcome {
    let path = regression_dir().join(name);
    let case = FuzzCase::load(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let scratch = std::env::temp_dir().join(format!("lbr-fuzz-regr-{}-{name}", std::process::id()));
    let harness = Harness::new(scratch).expect("scratch dir");
    let outcome = harness.run_case(&case, false);
    assert!(
        !outcome.skipped,
        "{name}: case no longer qualifies — generator drift?"
    );
    outcome
}

#[test]
fn i5_tripwire_case_replays_clean() {
    let outcome = replay("i5_ddmin_beats_gbr.json");
    assert!(
        outcome.violations.is_empty(),
        "the pinned I5 case must stay within the 25% tripwire: {:?}",
        outcome.violations
    );
    assert!(
        outcome.progressions >= 5,
        "all in-process progressions must run"
    );
}

#[test]
fn broken_oracle_cases_are_still_caught() {
    for name in ["broken_oracle_catch_a.json", "broken_oracle_catch_b.json"] {
        let outcome = replay(name);
        assert!(
            outcome.violations.iter().any(|v| v.contains("I1")),
            "{name}: the harness must catch the planted unsound oracle, got {:?}",
            outcome.violations
        );
    }
}

/// The pinned files themselves stay parseable and carry their recorded
/// violation messages (the provenance a future reader will reach for).
#[test]
fn regression_files_record_their_provenance() {
    for entry in std::fs::read_dir(regression_dir()).expect("regression dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let case = FuzzCase::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            case.violation.is_some(),
            "{}: a pinned case must record the violation that produced it",
            path.display()
        );
        assert!(
            case.keep_classes.is_some(),
            "{}: pinned cases are shrunk",
            path.display()
        );
    }
}

/// The pinned files predate the `format` field (`lbr-fuzz-case v1`); the
/// v2 parser must keep accepting them as classfile cases.
#[test]
fn v1_regression_files_parse_as_classfile() {
    for entry in std::fs::read_dir(regression_dir()).expect("regression dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let case = FuzzCase::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(case.format, "classfile", "{}", path.display());
        assert!(case.stack_workload.is_none(), "{}", path.display());
    }
}

/// The Input-trait equivalence leg: each pinned case's program, driven
/// by a reducer written against nothing but the trait, replays
/// bit-identically across engines — same reduced bytes, same predicate
/// calls, same probe-trace digest. This re-proves the classfile port on
/// exactly the inputs fuzzing once found interesting.
#[test]
fn regression_programs_replay_identically_through_the_input_trait() {
    use lbr_core::{EngineChoice, Input, InputOracle};
    use lbr_decompiler::DecompilerOracle;
    use lbr_jreduce::{ReductionReport, ReductionSession, RunOptions};

    fn reduce_via_trait<I: Input, O: InputOracle<I>>(
        input: &I,
        oracle: &O,
        options: RunOptions,
    ) -> ReductionReport<I> {
        ReductionSession::new(input, oracle)
            .cost_per_call(33.0)
            .options(options)
            .run()
            .expect("trait-driven reduction")
    }

    for name in [
        "i5_ddmin_beats_gbr.json",
        "broken_oracle_catch_a.json",
        "broken_oracle_catch_b.json",
    ] {
        let case =
            FuzzCase::load(&regression_dir().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let program = case.program();
        let oracle = DecompilerOracle::new(&program, case.bugs());
        let reference = reduce_via_trait(&program, &oracle, RunOptions::default());
        for (tag, options) in [
            ("legacy-scan", RunOptions::legacy()),
            (
                "cdcl",
                RunOptions {
                    engine: EngineChoice::Cdcl,
                    ..RunOptions::default()
                },
            ),
        ] {
            let report = reduce_via_trait(&program, &oracle, options);
            assert_eq!(
                report.reduced.to_bytes(),
                reference.reduced.to_bytes(),
                "{name} {tag}: reduced bytes diverge"
            );
            assert_eq!(
                report.predicate_calls, reference.predicate_calls,
                "{name} {tag}: predicate calls diverge"
            );
            assert_eq!(
                report.trace.digest(),
                reference.trace.digest(),
                "{name} {tag}: trace digest diverges"
            );
        }
    }
}
