//! Integration tests for the extension features: per-error reduction, the
//! local-minimization postpass, and backbone diagnostics on real models.

use lbr::jreduce::{build_model, check_report, run_per_error, run_reduction};
use lbr::logic::{backbone, bcp_simplify, remove_subsumed};
use lbr::workload::{suite, SuiteConfig};

fn one_benchmark() -> lbr::workload::Benchmark {
    suite(&SuiteConfig {
        seed: 21,
        programs: 1,
        scale: 0.8,
    })
    .into_iter()
    .next()
    .expect("a failing instance")
}

#[test]
fn per_error_reduction_produces_one_witness_per_error() {
    let b = one_benchmark();
    let oracle = b.oracle();
    let report = run_per_error(&b.program, &oracle, 33.0).expect("per-error runs");
    assert_eq!(
        report.errors.len(),
        oracle.error_count(),
        "one reduction per distinct baseline error"
    );
    let full = run_reduction(&b.program, &oracle, "logical/greedy", 33.0).expect("full run");
    // Each single-error witness is at most as large as the all-errors one.
    for (error, size) in &report.errors {
        assert!(
            size.bytes <= full.final_metrics.bytes,
            "witness for {error:?} ({}) larger than the all-errors result ({})",
            size.bytes,
            full.final_metrics.bytes
        );
    }
    // The combined trace reads as one sequential run.
    let points = report.combined_trace.points();
    assert_eq!(points.last().expect("nonempty").call, report.total_calls);
    assert!(points.windows(2).all(|w| w[0].call < w[1].call));
}

#[test]
fn minimized_strategy_is_sound_and_not_larger() {
    let b = one_benchmark();
    let oracle = b.oracle();
    let plain = run_reduction(&b.program, &oracle, "logical/greedy", 0.0).expect("plain runs");
    let minimized =
        run_reduction(&b.program, &oracle, "logical/minimized", 0.0).expect("minimized runs");
    check_report(&plain).expect("plain sound");
    check_report(&minimized).expect("minimized sound");
    assert!(
        minimized.final_metrics.bytes <= plain.final_metrics.bytes,
        "postpass must never grow the result ({} vs {})",
        minimized.final_metrics.bytes,
        plain.final_metrics.bytes
    );
    assert!(
        minimized.predicate_calls >= plain.predicate_calls,
        "the postpass spends extra predicate calls"
    );
}

#[test]
fn model_simplification_preserves_satisfiability_structure() {
    let b = one_benchmark();
    let model = build_model(&b.program).expect("valid input");
    let mut cnf = model.cnf.clone();
    let before = cnf.len();
    let removed = remove_subsumed(&mut cnf);
    assert!(cnf.len() + removed == before);
    // BCP on a freshly generated model: no forced literals (nothing is a
    // unit until a root requirement is added), hence no conflict.
    let simplified = bcp_simplify(&cnf).expect("satisfiable");
    assert!(simplified.forced.is_empty(), "{:?}", simplified.forced);
}

#[test]
fn backbone_of_model_with_requirement() {
    // Forcing a method body into the model makes its syntactic ancestry
    // backbone-true.
    use lbr::jreduce::Item;
    use lbr::logic::{Clause, Lit};
    let b = one_benchmark();
    let model = build_model(&b.program).expect("valid input");
    // Pick any method-code item and require it.
    let (code_var, owner) = model
        .registry
        .items()
        .iter()
        .enumerate()
        .find_map(|(i, item)| match item {
            Item::MethodCode(c, _, _) => Some((lbr::logic::Var::new(i as u32), c.clone())),
            _ => None,
        })
        .expect("some method code exists");
    let mut cnf = model.cnf.clone();
    cnf.add_clause(Clause::unit(Lit::pos(code_var)));
    let (forced_true, _) = backbone(&cnf).expect("satisfiable");
    assert!(forced_true.contains(code_var));
    let class_var = model.registry.var(&Item::Class(owner)).expect("class item");
    assert!(
        forced_true.contains(class_var),
        "the enclosing class must be backbone"
    );
}
