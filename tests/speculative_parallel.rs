//! Speculative parallel probing is a pure wall-clock optimisation: at any
//! `probe_threads` setting the pipeline must produce bit-identical results
//! to the sequential run — same reduced program, same predicate-call
//! count, same cache totals, same trace. These tests pin that on the
//! paper's running example (Figure 1a) and on the synthetic suite.

use lbr::core::{
    closure_size_order, generalized_binary_reduction, generalized_binary_reduction_speculative,
    GbrConfig, Instance, Oracle, SpeculationConfig,
};
use lbr::fji::{figure1_program, figure1b_solution, figure2_cnf, figure2_var, ItemRegistry};
use lbr::jreduce::{check_report, run_per_error_with, run_reduction_with, RunOptions};
use lbr::logic::{count_models, count_models_parallel, VarSet};
use lbr::workload::{suite, SuiteConfig};

/// Everything a trace records except wall-clock timestamps, which are the
/// one thing speculation is *allowed* to change.
fn trace_shape(trace: &lbr::core::ReductionTrace) -> Vec<(u64, f64, u64, bool)> {
    trace
        .points()
        .iter()
        .map(|p| (p.call, p.modeled_secs, p.size, p.success))
        .collect()
}

#[test]
fn figure1a_speculative_gbr_matches_sequential_at_all_thread_counts() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);
    let needed = [
        figure2_var(&reg, "A.m()!code"),
        figure2_var(&reg, "M.x()!code"),
        figure2_var(&reg, "M.main()!code"),
    ];

    let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
    let mut oracle = Oracle::new(&mut bug, 0.0);
    let sequential =
        generalized_binary_reduction(&instance, &order, &mut oracle, &GbrConfig::default())
            .expect("the example reduces");
    let sequential_calls = oracle.calls();
    assert_eq!(sequential.solution, figure1b_solution(&reg));

    for threads in [2usize, 4, 8] {
        let probe = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let run = generalized_binary_reduction_speculative(
            &instance,
            &order,
            &probe,
            &GbrConfig::default(),
            &SpeculationConfig::new(threads),
        )
        .expect("the example reduces speculatively");
        assert_eq!(
            run.outcome.solution, sequential.solution,
            "threads {threads}: must land on the Figure 1b optimum"
        );
        assert_eq!(run.outcome.learned, sequential.learned, "threads {threads}");
        assert_eq!(
            run.stats.useful_calls, sequential_calls,
            "threads {threads}: logical probe count must not change"
        );
    }
}

#[test]
fn pipeline_probe_threads_is_bit_identical() {
    let benchmarks = suite(&SuiteConfig {
        seed: 7,
        programs: 1,
        scale: 0.6,
    });
    let strategies = ["logical/greedy", "lossy-1"];
    for b in &benchmarks {
        let oracle = b.oracle();
        for &strategy in &strategies {
            let sequential =
                run_reduction_with(&b.program, &oracle, strategy, 0.5, &RunOptions::default())
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            check_report(&sequential).expect("sequential sound");
            for threads in [2usize, 4] {
                let options = RunOptions {
                    probe_threads: threads,
                    ..RunOptions::default()
                };
                let parallel = run_reduction_with(&b.program, &oracle, strategy, 0.5, &options)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                check_report(&parallel).expect("parallel sound");
                assert_eq!(parallel.reduced, sequential.reduced, "{}", b.name);
                assert_eq!(parallel.predicate_calls, sequential.predicate_calls);
                assert_eq!(parallel.cache_hits(), sequential.cache_hits());
                assert_eq!(parallel.cache_misses(), sequential.cache_misses());
                assert_eq!(parallel.final_metrics, sequential.final_metrics);
                assert_eq!(trace_shape(&parallel.trace), trace_shape(&sequential.trace));
                // Modeled time charges only the logical probe sequence, so
                // wasted speculation must not inflate it.
                assert!((parallel.modeled_secs - sequential.modeled_secs).abs() < 1e-9);
                assert_eq!(
                    parallel.probe_stats.useful_calls, parallel.predicate_calls,
                    "useful probes are exactly the logical probes"
                );
            }
        }
    }
}

#[test]
fn per_error_parallel_is_deterministic() {
    let benchmarks = suite(&SuiteConfig {
        seed: 13,
        programs: 1,
        scale: 0.6,
    });
    let b = &benchmarks[0];
    let oracle = b.oracle();
    let sequential = run_per_error_with(&b.program, &oracle, 0.0, &RunOptions::default())
        .expect("sequential per-error runs");
    for threads in [2usize, 4, 8] {
        let options = RunOptions {
            probe_threads: threads,
            ..RunOptions::default()
        };
        let parallel =
            run_per_error_with(&b.program, &oracle, 0.0, &options).expect("parallel runs");
        assert_eq!(parallel.errors, sequential.errors, "threads {threads}");
        assert_eq!(parallel.total_calls, sequential.total_calls);
        assert_eq!(
            trace_shape(&parallel.combined_trace),
            trace_shape(&sequential.combined_trace)
        );
        // The run-once sharded memo gives the same hit/miss totals as the
        // sequential shared cache, under any worker interleaving.
        assert_eq!(parallel.cache_hits, sequential.cache_hits);
        assert_eq!(parallel.cache_misses, sequential.cache_misses);
    }
}

#[test]
fn parallel_model_counting_matches_sequential() {
    // Figure 2's dependency model: 6,766 valid sub-inputs, regardless of
    // how many counting threads split the work.
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let dep = lbr::fji::figure2_dependency_cnf(&reg);
    assert_eq!(count_models(&dep), 6_766);
    for threads in [1usize, 2, 4, 8] {
        assert_eq!(
            count_models_parallel(&dep, threads),
            6_766,
            "threads {threads}"
        );
    }
    // And on the full Figure 2 CNF with the root requirement.
    let cnf = figure2_cnf(&reg);
    let expected = count_models(&cnf);
    assert_eq!(count_models_parallel(&cnf, 4), expected);
}
