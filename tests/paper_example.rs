//! E1/E6 — the paper's running example, end to end (Sections 2–4.5).
//!
//! The input program of Figure 1a has 20 reducible items and 32
//! dependency constraints (Figure 2); the dependency model admits exactly
//! 6,766 valid sub-inputs; and Generalized Binary Reduction finds the
//! optimal 11-item solution of Figure 1b with a handful of predicate
//! invocations (the paper's run uses 11).

use lbr::core::{closure_size_order, generalized_binary_reduction, GbrConfig, Instance, Oracle};
use lbr::fji::{
    figure1_program, figure1b_solution, figure2_cnf, figure2_dependency_cnf, figure2_var, pretty,
    reduce, typecheck_decls, typechecks, ItemRegistry,
};
use lbr::logic::{count_models, Clause, Lit, VarSet};

#[test]
fn example_has_20_variables_and_32_constraints() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    assert_eq!(reg.len(), 20);
    let mut cnf = figure2_cnf(&reg);
    let dups = cnf.dedup_clauses();
    assert_eq!(dups, 1, "Figure 2 shows one duplicate in gray");
    assert_eq!(cnf.len(), 32);
}

#[test]
fn valid_sub_inputs_are_6766() {
    // "we can see that there are 6,766 valid programs left" — counted with
    // a sharpSAT-style model counter.
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let dep = figure2_dependency_cnf(&reg);
    assert_eq!(count_models(&dep), 6_766);
    // Total sub-inputs: 2^20 = 1,048,576, as the paper notes.
    assert_eq!(1u64 << reg.len(), 1_048_576);
}

#[test]
fn generated_model_matches_figure2() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let formula = typecheck_decls(&program, &reg).expect("Figure 1a type checks");
    let mut generated = formula.to_cnf();
    generated.ensure_vars(reg.len());
    assert_eq!(count_models(&generated), 6_766);
    // Equivalence: conjoining Figure 2 does not remove models.
    let mut both = generated.clone();
    both.and(&figure2_dependency_cnf(&reg));
    assert_eq!(count_models(&both), 6_766);
}

#[test]
fn gbr_finds_the_optimal_reduction() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    // The instance: Figure 2's constraints plus the root requirement.
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    let instance = Instance::over_all_vars(cnf);

    // The tool's bug needs the bodies of A.m(), M.x() and M.main().
    let needed = [
        figure2_var(&reg, "A.m()!code"),
        figure2_var(&reg, "M.x()!code"),
        figure2_var(&reg, "M.main()!code"),
    ];
    let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
    let mut oracle = Oracle::new(&mut bug, 0.0);

    let outcome =
        generalized_binary_reduction(&instance, &order, &mut oracle, &GbrConfig::default())
            .expect("the example reduces");

    let optimal = figure1b_solution(&reg);
    assert_eq!(
        outcome.solution,
        optimal,
        "expected the Figure 1b optimum, got {}",
        reg.render_solution(&outcome.solution)
    );
    assert_eq!(outcome.solution.len(), 11);
    // The paper's run needs 11 invocations; our variable order differs
    // from theirs, so allow the same order of magnitude.
    let calls = oracle.calls();
    assert!(
        (5..=20).contains(&calls),
        "expected on the order of 11 predicate calls, got {calls}"
    );
}

#[test]
fn reduced_program_is_figure_1b() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let solution = figure1b_solution(&reg);
    let reduced = reduce(&program, &reg, &solution);

    // "We can remove B entirely …"
    assert!(reduced.class("B").is_none());
    // "… we remove the n methods from both I and A."
    let a = reduced.class("A").expect("A stays");
    assert_eq!(a.methods.len(), 1);
    assert_eq!(a.methods[0].name, "m");
    assert_eq!(a.interface, "I");
    let i = reduced.interface("I").expect("I stays");
    assert_eq!(i.sigs.len(), 1);
    assert_eq!(i.sigs[0].name, "m");
    // M is untouched.
    let m = reduced.class("M").expect("M stays");
    assert_eq!(m.methods.len(), 2);
    // Theorem 3.1: the reduction type checks.
    typechecks(&reduced).expect("Figure 1b type checks");
    // And it is smaller (16 vs 24 lines for this small example; on the
    // paper's real benchmark the same technique goes 7,661 → 815).
    let before = pretty(&program).lines().count();
    let after = pretty(&reduced).lines().count();
    assert!(after < before, "{after} vs {before} lines");
}

#[test]
fn progression_walkthrough_matches_section_4_5_shape() {
    // Section 4.5: the initial progression starts from the MSA of R⁺ (the
    // root requirement's closure) and covers the rest in small steps.
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    let progression = lbr::core::build_progression(
        &cnf,
        &order,
        lbr::logic::MsaStrategy::GreedyClosure,
        &[],
        &VarSet::full(reg.len()),
    )
    .expect("progression builds");
    // D0 is the closure of [M.main()!code]: M's items plus [A], [A<I], [I]
    // and [I.m()]'s obligations — the paper's D0 has 11 entries… ours
    // contains at least the root chain.
    let d0 = &progression[0];
    for name in ["M.main()!code", "M.main()", "M", "M.x()", "A", "A<I", "I"] {
        assert!(
            d0.contains(figure2_var(&reg, name)),
            "D0 must contain [{name}]"
        );
    }
    // Prefix unions are valid and the entries are disjoint.
    let mut acc = VarSet::empty(reg.len());
    for d in &progression {
        assert!(acc.is_disjoint(d));
        acc.union_with(d);
        assert!(cnf.eval(&acc));
    }
    assert_eq!(acc.len(), reg.len());
}

#[test]
fn figure1a_engine_and_scan_propagation_are_identical() {
    // The incremental watched-literal engine is a pure performance change:
    // on the paper's running example it must find the same MSAs as the
    // scan-based reference and drive GBR to the same Figure 1b optimum
    // with exactly the same predicate-call count.
    use lbr::core::PropagationMode;
    use lbr::logic::{msa, msa_scan, MsaStrategy};

    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    for strategy in MsaStrategy::ALL {
        assert_eq!(
            msa(&cnf, &order, strategy),
            msa_scan(&cnf, &order, strategy),
            "{strategy:?}"
        );
    }

    let instance = Instance::over_all_vars(cnf);
    let needed = [
        figure2_var(&reg, "A.m()!code"),
        figure2_var(&reg, "M.x()!code"),
        figure2_var(&reg, "M.main()!code"),
    ];
    let mut outcomes = Vec::new();
    for propagation in [PropagationMode::Incremental, PropagationMode::LegacyScan] {
        let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let mut oracle = Oracle::new(&mut bug, 0.0);
        let config = GbrConfig {
            propagation,
            ..GbrConfig::default()
        };
        let out = generalized_binary_reduction(&instance, &order, &mut oracle, &config)
            .expect("the example reduces");
        outcomes.push((out.solution, out.learned, oracle.calls()));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0].0, figure1b_solution(&reg));
}

#[test]
fn suboptimality_example_of_section_4_4() {
    // (a ∧ b ⇒ c) ∧ (c ⇒ b), P true iff b, order (c, b, a): GBR returns
    // {b, c} although {b} is smaller.
    use lbr::logic::{Cnf, Var, VarOrder};
    let (c, b, a) = (Var::new(0), Var::new(1), Var::new(2));
    let mut cnf = Cnf::new(3);
    cnf.add_clause(Clause::implication([a, b], [c]));
    cnf.add_clause(Clause::edge(c, b));
    let _ = Lit::pos(c);
    let instance = Instance::over_all_vars(cnf.clone());
    let order = VarOrder::from_permutation(vec![c, b, a]);
    let mut bug = |s: &VarSet| s.contains(b);
    let out = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
        .expect("reduces");
    assert_eq!(out.solution.iter().collect::<Vec<_>>(), vec![c, b]);
    // {b} alone is also a valid failing input — the suboptimality is real.
    let mut just_b = VarSet::empty(3);
    just_b.insert(b);
    assert!(cnf.eval(&just_b));
}
