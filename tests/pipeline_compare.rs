//! Cross-strategy integration: on a small NJR-like suite, every strategy
//! is sound, and the paper's ordering holds — the logical reducer produces
//! the smallest outputs, the lossy encodings come close, and J-Reduce
//! (class granularity) trails.

use lbr::jreduce::{check_report, run_reduction};
use lbr::workload::{suite, SuiteConfig};

#[test]
fn all_strategies_are_sound_and_ordered() {
    let benchmarks = suite(&SuiteConfig {
        seed: 7,
        programs: 2,
        scale: 1.0,
    });
    assert!(
        benchmarks.len() >= 3,
        "suite too small: {}",
        benchmarks.len()
    );

    let strategies = ["jreduce", "logical/greedy", "lossy-1", "lossy-2"];

    let mut sum_bytes: Vec<(String, f64)> = Vec::new();
    for b in &benchmarks {
        let oracle = b.oracle();
        let mut per_benchmark = Vec::new();
        for &s in &strategies {
            let report = run_reduction(&b.program, &oracle, s, 0.0)
                .unwrap_or_else(|e| panic!("{}/{s}: {e}", b.name));
            check_report(&report).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            per_benchmark.push((report.strategy.clone(), report.relative_bytes()));
        }
        // Logical ≤ both lossy variants ≤ … on this benchmark? The paper
        // only claims this in aggregate; record for the aggregate check.
        sum_bytes.extend(per_benchmark);
    }

    let mean = |name: &str| {
        let xs: Vec<f64> = sum_bytes
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let logical = mean("logical/greedy");
    let lossy1 = mean("lossy-1");
    let lossy2 = mean("lossy-2");
    let jreduce = mean("jreduce");
    assert!(
        logical <= lossy1 + 1e-9 && logical <= lossy2 + 1e-9,
        "logical ({logical:.3}) must not lose to lossy ({lossy1:.3}, {lossy2:.3})"
    );
    assert!(
        logical < jreduce,
        "logical ({logical:.3}) must beat class-granularity jreduce ({jreduce:.3})"
    );
    assert!(
        lossy1 < jreduce && lossy2 < jreduce,
        "lossy encodings ({lossy1:.3}, {lossy2:.3}) must beat jreduce ({jreduce:.3})"
    );
}

#[test]
fn ddmin_is_sound_but_expensive() {
    // The paper: "ddmin tends to produce disappointing results" — at item
    // granularity with a validity filter it is sound but uses far more
    // predicate calls than GBR.
    let benchmarks = suite(&SuiteConfig {
        seed: 3,
        programs: 1,
        scale: 0.5,
    });
    let b = &benchmarks[0];
    let oracle = b.oracle();
    let gbr = run_reduction(&b.program, &oracle, "logical/greedy", 0.0).expect("gbr runs");
    let ddmin = run_reduction(&b.program, &oracle, "ddmin-items", 0.0).expect("ddmin runs");
    check_report(&gbr).expect("gbr sound");
    check_report(&ddmin).expect("ddmin sound");
    assert!(
        ddmin.predicate_calls > gbr.predicate_calls,
        "ddmin ({}) should need more predicate calls than GBR ({})",
        ddmin.predicate_calls,
        gbr.predicate_calls
    );
}

#[test]
fn reduction_is_idempotent_in_size() {
    // Reducing an already-reduced program must change nothing of
    // substance: the result stays sound and cannot shrink much further
    // (GBR already landed on a locally small input).
    let benchmarks = suite(&SuiteConfig {
        seed: 5,
        programs: 1,
        scale: 0.6,
    });
    let b = &benchmarks[0];
    let oracle = b.oracle();
    let first = run_reduction(&b.program, &oracle, "logical/greedy", 0.0).expect("first reduction");
    check_report(&first).expect("first sound");
    // The oracle's baseline is defined against the original; rebuilding it
    // against the reduced program gives the same error set.
    let oracle2 = lbr::decompiler::DecompilerOracle::new(&first.reduced, b.bugs.clone());
    assert_eq!(oracle2.baseline(), oracle.baseline());
    let second =
        run_reduction(&first.reduced, &oracle2, "logical/greedy", 0.0).expect("second reduction");
    check_report(&second).expect("second sound");
    assert!(second.final_metrics.bytes <= first.final_metrics.bytes);
    let shrink = first.final_metrics.bytes - second.final_metrics.bytes;
    assert!(
        (shrink as f64) < 0.2 * first.final_metrics.bytes as f64,
        "re-reducing shrank by {shrink} of {} bytes — first pass missed too much",
        first.final_metrics.bytes
    );
}

#[test]
fn order_ablation_natural_is_never_better() {
    let benchmarks = suite(&SuiteConfig {
        seed: 11,
        programs: 1,
        scale: 0.7,
    });
    let b = &benchmarks[0];
    let oracle = b.oracle();
    let good =
        run_reduction(&b.program, &oracle, "logical/greedy", 0.0).expect("closure order runs");
    let natural = run_reduction(&b.program, &oracle, "logical/natural-order", 0.0)
        .expect("natural order runs");
    check_report(&good).expect("sound");
    check_report(&natural).expect("sound");
    assert!(
        good.final_metrics.bytes <= natural.final_metrics.bytes,
        "closure-size order ({}) must not lose to natural order ({})",
        good.final_metrics.bytes,
        natural.final_metrics.bytes
    );
}
