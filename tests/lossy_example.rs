//! Section 4.3 on the paper's own example: the lossy graph encoding is
//! sound but non-optimal.
//!
//! Replacing `([A◁I] ∧ [I.m()]) ⇒ [A.m()]` with the edge `[A◁I] ⇒ [A.m()]`
//! (and likewise for the other three non-graph clauses) lets Binary
//! Reduction run on a pure graph — but the paper notes the result "will
//! preserve both [B] and [A.m()], which is nonoptimal". We check exactly
//! that: the lossy solutions are valid and failure-inducing but keep `[B]`,
//! while GBR's 11-item optimum does not.

use lbr::core::{
    binary_reduction, closure_size_order, generalized_binary_reduction, lossy_encode, lossy_graph,
    lossy_is_sound, GbrConfig, Instance, LossyPick,
};
use lbr::fji::{figure1_program, figure1b_solution, figure2_cnf, figure2_var, ItemRegistry};
use lbr::logic::{dpll, VarSet};

fn bug_vars(reg: &ItemRegistry) -> [lbr::logic::Var; 3] {
    [
        figure2_var(reg, "A.m()!code"),
        figure2_var(reg, "M.x()!code"),
        figure2_var(reg, "M.main()!code"),
    ]
}

#[test]
fn lossy_encodings_are_sound_on_figure2() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    for pick in [LossyPick::FirstFirst, LossyPick::LastLast] {
        let encoded = lossy_encode(&cnf, &order, pick);
        assert!(
            encoded.clauses().iter().all(|c| c.is_graph_constraint()),
            "{pick:?} must produce only graph constraints"
        );
        // Every model of the encoding satisfies the original (checked on a
        // spread of DPLL models with different orders).
        let n = reg.len();
        for rot in 0..n {
            let order = lbr::logic::VarOrder::from_permutation(
                (0..n as u32)
                    .map(|i| lbr::logic::Var::new((i + rot as u32) % n as u32))
                    .collect(),
            );
            if let Some(model) = dpll::solve(&encoded, &order) {
                assert!(lossy_is_sound(&cnf, &encoded, &widen(model, n)));
            }
        }
    }
}

fn widen(s: VarSet, n: usize) -> VarSet {
    VarSet::from_iter_with_universe(n, s.iter())
}

#[test]
fn lossy_binary_reduction_is_nonoptimal_gbr_is_optimal() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_cnf(&reg);
    let order = closure_size_order(&cnf);
    let needed = bug_vars(&reg);

    // GBR on the full logical model: the 11-item optimum.
    let instance = Instance::over_all_vars(cnf.clone());
    let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
    let gbr = generalized_binary_reduction(&instance, &order, &mut bug, &GbrConfig::default())
        .expect("gbr reduces");
    assert_eq!(gbr.solution, figure1b_solution(&reg));
    let b_class = figure2_var(&reg, "B");
    assert!(!gbr.solution.contains(b_class), "the optimum drops class B");

    // Binary Reduction on the lossy graphs: sound but keeps B.
    for pick in [LossyPick::FirstFirst, LossyPick::LastLast] {
        let lg = lossy_graph(&cnf, &order, pick).expect("consistent encoding");
        assert!(lg.forbidden.is_empty());
        let mut bug = |s: &VarSet| needed.iter().all(|v| s.contains(*v));
        let out = binary_reduction(&lg.graph, &mut bug).expect("reduces");
        // Sound: the result is a valid failing sub-input of the original.
        assert!(cnf.eval(&out.solution), "{pick:?} result must satisfy R");
        assert!(needed.iter().all(|v| out.solution.contains(*v)));
        // Never better than the optimum.
        assert!(
            out.solution.len() >= gbr.solution.len(),
            "{pick:?} found {} items, optimum is {}",
            out.solution.len(),
            gbr.solution.len()
        );
        if pick == LossyPick::FirstFirst {
            // The paper's specific observation for (i' = 1, j' = 1): the
            // added edges preserve both [B] and [A.m()], which is
            // non-optimal. (The last-last pick happens to be optimal on
            // this particular example.)
            assert!(
                out.solution.len() > gbr.solution.len(),
                "lossy-1 must be strictly non-optimal here"
            );
            assert!(
                out.solution.contains(b_class),
                "lossy-1 keeps class B: {}",
                reg.render_solution(&out.solution)
            );
            assert!(out.solution.contains(figure2_var(&reg, "A.m()")));
        }
    }
}
