//! Theorem 3.1, verified exhaustively: every satisfying assignment of the
//! generated constraints reduces to a program that type checks.
//!
//! Two granularities, matching the two constraint sets:
//!
//! * the *declaration* constraints (Figure 2 without the root requirement)
//!   have exactly 6,766 models — the number the paper counts with
//!   sharpSAT — and each reduces to a well-typed class table;
//! * the *full program* constraints (declarations plus the main
//!   expression) guarantee the whole program, main expression included,
//!   type checks after reduction.

use lbr::fji::{
    figure1_program, figure2_dependency_cnf, reduce, typecheck, typecheck_decls, typechecks,
    ItemRegistry,
};
use lbr::logic::dpll::all_models;

#[test]
fn every_decl_model_reduces_to_typechecking_declarations() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let cnf = figure2_dependency_cnf(&reg);
    let models = all_models(&cnf, 7_000);
    assert_eq!(models.len(), 6_766, "all valid sub-inputs enumerated");
    for (i, model) in models.iter().enumerate() {
        let reduced = reduce(&program, &reg, model);
        let reduced_reg = ItemRegistry::from_program(&reduced);
        if let Err(e) = typecheck_decls(&reduced, &reduced_reg) {
            panic!(
                "model #{i} ({}) reduced to ill-typed declarations: {e}",
                reg.render_solution(model)
            );
        }
    }
}

#[test]
fn every_full_model_reduces_to_a_typechecking_program() {
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let formula = typecheck(&program, &reg).expect("Figure 1a type checks");
    let mut cnf = formula.to_cnf();
    cnf.ensure_vars(reg.len());
    let models = all_models(&cnf, 7_000);
    // The main expression `new M().main()` pins [M] and [M.main()],
    // shrinking the space below the 6,766 declaration-only models.
    assert!(
        !models.is_empty() && models.len() < 6_766,
        "{}",
        models.len()
    );
    for (i, model) in models.iter().enumerate() {
        let reduced = reduce(&program, &reg, model);
        if let Err(e) = typechecks(&reduced) {
            panic!(
                "model #{i} ({}) reduced to an ill-typed program: {e}",
                reg.render_solution(model)
            );
        }
    }
}

#[test]
fn converse_of_theorem_31_does_not_hold() {
    // The paper leaves open "whether the converse of Theorem 3.1 holds":
    // if reduce(P, φ) type checks, is φ a model? For this reducer the
    // answer is *no*: keep [A.m()!code] while dropping [A.m()] — the
    // syntactic constraint [A.m()!code] ⇒ [A.m()] is violated, but the
    // reducer drops the whole method (the code toggle becomes moot) and
    // the result still type checks.
    use lbr::fji::figure2_var;
    use lbr::logic::VarSet;
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    let mut phi = VarSet::empty(reg.len());
    for name in [
        "A",
        "A<I",
        "A.m()!code", // code kept, method dropped: violates φ ⊨ π
        "I",          // kept with no signatures, so no obligations fire
        "M",
        "M.x()",
        "M.main()",
        "M.main()!code", // M.x's body is stubbed
    ] {
        phi.insert(figure2_var(&reg, name));
    }
    let cnf = figure2_dependency_cnf(&reg);
    assert!(!cnf.eval(&phi), "φ must violate the constraints");
    let reduced = reduce(&program, &reg, &phi);
    typechecks(&reduced).expect("the reduction nevertheless type checks");
}

#[test]
fn non_models_can_produce_ill_typed_programs() {
    // Sanity check that the theorem is not vacuous: there are assignments
    // violating the constraints whose reduction does NOT type check.
    use lbr::fji::figure2_var;
    use lbr::logic::VarSet;
    let program = figure1_program();
    let reg = ItemRegistry::from_program(&program);
    // Keep M.main's body but drop M.x entirely: the call in main dangles.
    let mut bad = VarSet::empty(reg.len());
    for name in ["M", "M.main()", "M.main()!code", "A", "A<I", "I"] {
        bad.insert(figure2_var(&reg, name));
    }
    let cnf = figure2_dependency_cnf(&reg);
    assert!(!cnf.eval(&bad), "the assignment must violate the model");
    let reduced = reduce(&program, &reg, &bad);
    assert!(
        typechecks(&reduced).is_err(),
        "the reduction must not type check"
    );
}
