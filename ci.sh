#!/bin/sh
# Offline CI: build, test, lint. No network access is required or used.
#
#   ./ci.sh          # the full tier-1 gate
#
# Mirrors what reviewers run locally; keep it fast and deterministic.
set -eu

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== test (workspace) =="
cargo test --workspace -q --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== rustfmt (check) =="
cargo fmt --all --check

echo "== speculative probing determinism smoke =="
# --probe-threads must be a pure wall-clock optimisation: a 2-thread run of
# the small suite has to be bit-identical (calls, sizes, cache totals) to
# the sequential one.
smoke_dir=$(mktemp -d)
svc_pid=""
coord_pid=""
worker_pids=""
cleanup() {
    [ -z "$svc_pid" ] || kill -9 "$svc_pid" 2>/dev/null || true
    [ -z "$coord_pid" ] || kill -9 "$coord_pid" 2>/dev/null || true
    for p in $worker_pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$smoke_dir"
}
trap cleanup EXIT
./target/release/eval --experiment fig8a --format both --programs 1 --scale 0.5 \
    --probe-threads 1 --json "$smoke_dir/seq.json" >/dev/null
./target/release/eval --experiment fig8a --format both --programs 1 --scale 0.5 \
    --probe-threads 2 --json "$smoke_dir/par.json" >/dev/null
grep -q '"format": "stackvm"' "$smoke_dir/seq.json"
./target/release/bench_compare --identical "$smoke_dir/seq.json" "$smoke_dir/par.json"

echo "== strategy registry smoke (--list-strategies enumerates the zoo) =="
# The CLI's strategy table is generated from the registry, not a hardcoded
# list: the baseline zoo and the trace-guided mode must show up with their
# capability flags, and trace-guided must not claim the engine capability
# (it runs the scan-based MSA only).
strategies=$(./target/release/reduce --list-strategies)
for s in "logical/greedy" "jreduce" "ddmin-items" "hdd" "transform" "logical/trace-guided"; do
    echo "$strategies" | grep -q "^$s " || {
        echo "--list-strategies is missing $s" >&2
        exit 1
    }
done
echo "$strategies" | grep "^logical/trace-guided " | grep -qv "engine"
echo "$strategies" | grep "^logical/trace-guided " | grep -q "model"

echo "== CDCL/DPLL differential smoke (bit-identical engines) =="
# --engine is a pure solver swap: the CDCL run must produce byte-identical
# output and the same probe-trace digest as the DPLL reference.
./target/release/gen --seed 9 --decompiler a --out "$smoke_dir/engine.lbrc" 2>/dev/null
./target/release/reduce --input "$smoke_dir/engine.lbrc" --decompiler a \
    --engine dpll --out "$smoke_dir/engine-dpll.lbrc" \
    --json "$smoke_dir/engine-dpll.json" >/dev/null 2>&1
./target/release/reduce --input "$smoke_dir/engine.lbrc" --decompiler a \
    --engine cdcl --out "$smoke_dir/engine-cdcl.lbrc" \
    --json "$smoke_dir/engine-cdcl.json" >/dev/null 2>&1
cmp "$smoke_dir/engine-dpll.lbrc" "$smoke_dir/engine-cdcl.lbrc"
dpll_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/engine-dpll.json")
cdcl_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/engine-cdcl.json")
[ -n "$dpll_digest" ] && [ "$dpll_digest" = "$cdcl_digest" ]

echo "== cross-format differential smoke (stackvm frontend, same pipeline) =="
# The stackvm frontend rides the same Input-generic pipeline: both engines
# must agree bit for bit on a stackvm module, exactly as they do on the
# classfile container above.
./target/release/gen --format stackvm --seed 9 --decompiler a \
    --out "$smoke_dir/svm.lbrs" 2>/dev/null
./target/release/reduce --format stackvm --input "$smoke_dir/svm.lbrs" \
    --decompiler a --engine dpll --out "$smoke_dir/svm-dpll.lbrs" \
    --json "$smoke_dir/svm-dpll.json" >/dev/null 2>&1
./target/release/reduce --format stackvm --input "$smoke_dir/svm.lbrs" \
    --decompiler a --engine cdcl --out "$smoke_dir/svm-cdcl.lbrs" \
    --json "$smoke_dir/svm-cdcl.json" >/dev/null 2>&1
cmp "$smoke_dir/svm-dpll.lbrs" "$smoke_dir/svm-cdcl.lbrs"
svm_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/svm-dpll.json")
svm_cdcl=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/svm-cdcl.json")
[ -n "$svm_digest" ] && [ "$svm_digest" = "$svm_cdcl" ]

echo "== reduction daemon smoke (identical results, kill -9 resume) =="
# A daemon job must be bit-identical to an in-process `reduce` run, and a
# daemon killed with SIGKILL mid-job must resume the job from its checkpoint
# after restart, with the persistent oracle cache serving warm hits.
svc="$smoke_dir/service"
wait_daemon() {
    i=0
    while ! ./target/release/reduce-client --state-dir "$svc" ping >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "daemon did not come up" >&2; exit 1; }
        sleep 0.1
    done
}
./target/release/gen --seed 7 --decompiler a --out "$smoke_dir/daemon.lbrc" 2>/dev/null
./target/release/reduce --input "$smoke_dir/daemon.lbrc" --decompiler a \
    --out "$smoke_dir/ref.lbrc" --json "$smoke_dir/ref.json" >/dev/null 2>&1

./target/release/lbr-serviced --state-dir "$svc" --workers 2 >/dev/null &
svc_pid=$!
wait_daemon
./target/release/reduce-client --state-dir "$svc" submit \
    --input "$smoke_dir/daemon.lbrc" --decompiler a \
    --out "$smoke_dir/daemon-out.lbrc" --wait >"$smoke_dir/daemon-result.json"
cmp "$smoke_dir/ref.lbrc" "$smoke_dir/daemon-out.lbrc"
ref_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/ref.json")
got_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/daemon-result.json")
[ -n "$ref_digest" ] && [ "$ref_digest" = "$got_digest" ]
# A stackvm job through the same daemon must match the in-process stackvm
# reduction from the cross-format smoke above, bit for bit.
./target/release/reduce-client --state-dir "$svc" submit \
    --input "$smoke_dir/svm.lbrs" --format stackvm --decompiler a \
    --out "$smoke_dir/svm-daemon.lbrs" --wait >"$smoke_dir/svm-daemon.json"
cmp "$smoke_dir/svm-dpll.lbrs" "$smoke_dir/svm-daemon.lbrs"
svm_daemon=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/svm-daemon.json")
[ "$svm_digest" = "$svm_daemon" ]
grep -q '"format":"stackvm"' "$smoke_dir/svm-daemon.json"

# Kill -9 mid-job: a fresh container (cold cache, so probes really sleep),
# slowed-down probes, wait for the first checkpoint, then SIGKILL the daemon
# and restart it over the same state directory.
./target/release/gen --seed 8 --decompiler a --out "$smoke_dir/slow.lbrc" 2>/dev/null
./target/release/reduce --input "$smoke_dir/slow.lbrc" --decompiler a \
    --out "$smoke_dir/ref2.lbrc" >/dev/null 2>&1
job_id=$(./target/release/reduce-client --state-dir "$svc" submit \
    --input "$smoke_dir/slow.lbrc" --decompiler a --probe-latency-micros 20000 \
    --out "$smoke_dir/resumed.lbrc" | grep -o '[0-9]*')
i=0
while [ ! -f "$svc/job-$job_id.ckpt" ]; do
    i=$((i + 1))
    [ "$i" -lt 300 ] || { echo "job $job_id never checkpointed" >&2; exit 1; }
    sleep 0.1
done
kill -9 "$svc_pid"
wait "$svc_pid" 2>/dev/null || true
./target/release/lbr-serviced --state-dir "$svc" --workers 2 >/dev/null &
svc_pid=$!
wait_daemon
./target/release/reduce-client --state-dir "$svc" result --id "$job_id" --wait \
    >"$smoke_dir/resumed.json"
grep -q '"resumed":true' "$smoke_dir/resumed.json"
cmp "$smoke_dir/ref2.lbrc" "$smoke_dir/resumed.lbrc"
# A fresh identical job after the restart must reproduce the reference digest
# and be served from the disk-loaded (warm) cache.
./target/release/reduce-client --state-dir "$svc" submit \
    --input "$smoke_dir/daemon.lbrc" --decompiler a \
    --out "$smoke_dir/warm.lbrc" --wait >"$smoke_dir/warm.json"
warm_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/warm.json")
[ "$ref_digest" = "$warm_digest" ]
cmp "$smoke_dir/ref.lbrc" "$smoke_dir/warm.lbrc"
./target/release/reduce-client --state-dir "$svc" stats >"$smoke_dir/stats.json"
grep -o '"warm_hits":[0-9]*' "$smoke_dir/stats.json" | grep -qv ':0$'
./target/release/reduce-client --state-dir "$svc" shutdown >/dev/null
wait "$svc_pid" 2>/dev/null || true
svc_pid=""

echo "== binary framing smoke (byte-identical to JSON framing) =="
# The compact binary wire format is an encoding, not a semantic change: the
# same job submitted over --binary must produce byte-identical output and
# the same trace digest as the JSON-framed reference run above.
./target/release/lbr-serviced --state-dir "$svc" --workers 2 >/dev/null &
svc_pid=$!
wait_daemon
./target/release/reduce-client --state-dir "$svc" --binary submit \
    --input "$smoke_dir/daemon.lbrc" --decompiler a \
    --out "$smoke_dir/binary.lbrc" --wait >"$smoke_dir/binary.json"
bin_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$smoke_dir/binary.json")
[ -n "$bin_digest" ] && [ "$ref_digest" = "$bin_digest" ]
cmp "$smoke_dir/ref.lbrc" "$smoke_dir/binary.lbrc"
./target/release/reduce-client --state-dir "$svc" shutdown >/dev/null
wait "$svc_pid" 2>/dev/null || true
svc_pid=""

echo "== cluster smoke (1/2/4 workers byte-identical to single host) =="
# The distributed cluster is a wall-clock optimisation, never a semantic
# one: the coordinator demands verdicts in exact sequential probe order,
# so any worker count must reproduce the single-host reference bit for
# bit. The modeled probe latency gives the TCP workers time to win
# batches; the stats check proves they really participated.
wait_coordinator() {
    i=0
    while ! ./target/release/reduce-client --state-dir "$1" ping >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "coordinator did not come up" >&2; exit 1; }
        sleep 0.1
    done
}
start_workers() { # state-dir count name-prefix
    w=0
    while [ "$w" -lt "$2" ]; do
        ./target/release/lbr-workerd --state-dir "$1" --name "$3-$w" \
            >/dev/null 2>&1 &
        worker_pids="$worker_pids $!"
        w=$((w + 1))
    done
}
stop_workers() {
    for p in $worker_pids; do kill -9 "$p" 2>/dev/null || true; done
    worker_pids=""
}
for n in 1 2 4; do
    cl="$smoke_dir/cluster-$n"
    ./target/release/lbr-coordinatord --state-dir "$cl" --workers 2 \
        >/dev/null 2>&1 &
    coord_pid=$!
    wait_coordinator "$cl"
    start_workers "$cl" "$n" "w$n"
    ./target/release/reduce-client --state-dir "$cl" submit \
        --input "$smoke_dir/daemon.lbrc" --decompiler a \
        --probe-latency-micros 2000 \
        --out "$cl/out.lbrc" --wait >"$cl/result.json"
    cmp "$smoke_dir/ref.lbrc" "$cl/out.lbrc"
    n_digest=$(grep -o '"trace_digest":"[0-9a-f]*"' "$cl/result.json")
    [ -n "$n_digest" ] && [ "$ref_digest" = "$n_digest" ]
    ./target/release/reduce-client --state-dir "$cl" stats --cluster \
        >"$cl/stats.json"
    grep -o '"verdicts":[0-9]*' "$cl/stats.json" | grep -qv ':0$'
    ./target/release/reduce-client --state-dir "$cl" shutdown >/dev/null
    wait "$coord_pid" 2>/dev/null || true
    coord_pid=""
    stop_workers
done

echo "== cluster chaos smoke (kill -9 worker mid-batch, then coordinator) =="
# Robustness must not cost determinism: a worker SIGKILLed mid-batch has
# its slice requeued, and a coordinator SIGKILLed mid-job resumes from
# its checkpoint — both disturbed runs must stay byte-identical to the
# undisturbed single-host reference.
cl="$smoke_dir/cluster-chaos"
./target/release/lbr-coordinatord --state-dir "$cl" --workers 2 \
    >/dev/null 2>&1 &
coord_pid=$!
wait_coordinator "$cl"
start_workers "$cl" 1 chaos
./target/release/lbr-workerd --state-dir "$cl" --name chaos-victim \
    >/dev/null 2>&1 &
victim_pid=$!
job_id=$(./target/release/reduce-client --state-dir "$cl" submit \
    --input "$smoke_dir/slow.lbrc" --decompiler a \
    --probe-latency-micros 20000 \
    --out "$cl/worker-chaos.lbrc" | grep -o '[0-9]*')
sleep 0.5
kill -9 "$victim_pid"
wait "$victim_pid" 2>/dev/null || true
./target/release/reduce-client --state-dir "$cl" result --id "$job_id" --wait \
    >"$cl/worker-chaos.json"
cmp "$smoke_dir/ref2.lbrc" "$cl/worker-chaos.lbrc"
# Now the coordinator: a fresh cold container so probes really sleep,
# SIGKILL after the first checkpoint, restart over the same state dir
# (fresh workers — the old ones hold the dead listener's address).
./target/release/gen --seed 10 --decompiler a --out "$smoke_dir/chaos.lbrc" 2>/dev/null
./target/release/reduce --input "$smoke_dir/chaos.lbrc" --decompiler a \
    --out "$smoke_dir/ref3.lbrc" >/dev/null 2>&1
job_id=$(./target/release/reduce-client --state-dir "$cl" submit \
    --input "$smoke_dir/chaos.lbrc" --decompiler a \
    --probe-latency-micros 20000 \
    --out "$cl/coord-chaos.lbrc" | grep -o '[0-9]*')
i=0
while [ ! -f "$cl/job-$job_id.ckpt" ]; do
    i=$((i + 1))
    [ "$i" -lt 300 ] || { echo "job $job_id never checkpointed" >&2; exit 1; }
    sleep 0.1
done
kill -9 "$coord_pid"
wait "$coord_pid" 2>/dev/null || true
stop_workers
./target/release/lbr-coordinatord --state-dir "$cl" --workers 2 \
    >/dev/null 2>&1 &
coord_pid=$!
wait_coordinator "$cl"
start_workers "$cl" 2 chaos2
./target/release/reduce-client --state-dir "$cl" result --id "$job_id" --wait \
    >"$cl/coord-chaos.json"
grep -q '"resumed":true' "$cl/coord-chaos.json"
cmp "$smoke_dir/ref3.lbrc" "$cl/coord-chaos.lbrc"
./target/release/reduce-client --state-dir "$cl" shutdown >/dev/null
wait "$coord_pid" 2>/dev/null || true
coord_pid=""
stop_workers

echo "== saturation smoke (fixed seed, queue-full must shed, not hang) =="
# Offered load far above a tiny queue's capacity: every arrival must either
# complete or be shed with an explicit retry_after_ms — never time out.
./target/release/loadgen --smoke --seed 1

echo "== differential fuzzing gate (fixed seed, every progression) =="
# A fixed-seed campaign across every progression — including the I8
# CDCL-vs-DPLL agreement checks and the P13–P15 baseline-zoo runs (HDD,
# transformation passes, trace-guided GBR) — must come back clean. The
# case stream mixes both frontends and samples the adversarial workload
# shapes (constraint-dense, wide-flat, deep-chain, multi-error) one case
# in four; the
# seed pins the exact stream, so a violation here is reproducible with
# the printed `fuzz --replay` command.
./target/release/fuzz --budget-secs 60 --seed 0xC0FFEE --min-cases 200 \
    --out-dir "$smoke_dir"

echo "== fuzzing self-test (broken oracle must be caught and shrunk) =="
# Prove the harness can still catch bugs: with the deliberately lying
# oracle armed, the campaign must exit non-zero and leave a shrunk,
# replayable case file whose replay also exits non-zero.
broken_dir="$smoke_dir/broken"
mkdir -p "$broken_dir"
if ./target/release/fuzz --max-cases 3 --break-oracle --no-daemon \
    --seed 0xC0FFEE --out-dir "$broken_dir" >/dev/null 2>&1; then
    echo "broken-oracle campaign did not detect the planted bug" >&2
    exit 1
fi
broken_case=$(ls "$broken_dir"/FUZZ_CASE_*.json 2>/dev/null | head -n 1)
[ -n "$broken_case" ] || { echo "no shrunk case file was written" >&2; exit 1; }
if ./target/release/fuzz --replay "$broken_case" --no-daemon >/dev/null 2>&1; then
    echo "replay of $broken_case did not reproduce the violation" >&2
    exit 1
fi

# Optional wall-time gates against the committed baselines: BENCH_GATE=1 ./ci.sh
# BENCH_REBASELINE=1 ./ci.sh instead REGENERATES BENCH_baseline.json at this
# exact point in the script — after the fuzz campaign and the service/cluster
# smokes have loaded the machine — so the committed wall numbers are measured
# under the same conditions the gate later runs in (an idle-machine baseline
# makes every sub-second row read 10-20% slow inside a full CI run).
if [ "${BENCH_GATE:-0}" = "1" ] || [ "${BENCH_REBASELINE:-0}" = "1" ]; then
    # The engine/order grid covers the headline strategies plus the CDCL
    # and learned/portfolio rows; the compare experiment covers the full
    # baseline zoo — jreduce, logical/greedy, ddmin-items, hdd, transform,
    # logical/trace-guided. Both run over both frontends, and the baseline
    # holds one aggregate entry per (strategy, format) pair, so each
    # strategy is gated at its own level rather than hiding behind a
    # suite-wide total. Predicate calls are deterministic, so any increase
    # on any row fails the gate outright. Wall numbers are taken
    # sequentially (no cross-job core contention) as the minimum of nine
    # repeats — the same recipe that produced the committed baseline.
    #
    # The container's clock jitters in multi-second throttling phases, so
    # a wall-only trip is re-measured once from scratch before it fails
    # the build. The thresholds never change: a real regression fails
    # both attempts, and the predicate-call gate is deterministic either
    # way.
    measure_suites() {
        ./target/release/eval --experiment ablate-engine --format both \
            --programs 2 --scale 0.6 \
            --threads 1 --repeats 9 --json "$smoke_dir/current.json" >/dev/null
        ./target/release/eval --experiment compare --format both \
            --programs 2 --scale 0.6 \
            --threads 1 --repeats 9 --json "$smoke_dir/current-zoo.json" >/dev/null
    }
    compare_suites() {
        echo "== bench gate (<=10% wall, 0% predicate-call regression vs BENCH_baseline.json) =="
        ./target/release/bench_compare BENCH_baseline.json "$smoke_dir/current.json" &&
            echo "== strategy-zoo gate (per-strategy, per-format, same thresholds) ==" &&
            ./target/release/bench_compare BENCH_baseline.json "$smoke_dir/current-zoo.json"
    }
    measure_suites
    if [ "${BENCH_REBASELINE:-0}" = "1" ]; then
        echo "== rebaseline (BENCH_baseline.json from this machine, under CI load) =="
        ./target/release/bench_compare "$smoke_dir/current.json" \
            "$smoke_dir/current-zoo.json" --merge-baseline BENCH_baseline.json
    else
        if ! compare_suites; then
            echo "-- wall gate tripped; re-measuring once (calls are deterministic, wall is not) --"
            measure_suites
            compare_suites
        fi
    fi

    # Warm throughput and p95 are wall-clock-sensitive, so the drift threshold
    # is looser than the deterministic wall gate above; the 150 jobs/s floor on
    # the highest-worker run is absolute.
    service_gate() {
        echo "== service gate (warm >=150 jobs/s, <=30% drift vs BENCH_service.json) =="
        ./target/release/loadgen --out "$smoke_dir/service.json" >/dev/null
        ./target/release/bench_compare BENCH_service.json "$smoke_dir/service.json" \
            --service --threshold 30 --min-warm-jps 150
    }
    if ! service_gate; then
        echo "-- service gate tripped; re-measuring once --"
        service_gate
    fi

    # The 1/2/4-worker-node sweep; on top of the throughput/p95 drift
    # gates, every run must show non-zero worker verdicts — a cluster
    # where the coordinator computed everything inline is inert, however
    # fast it looks. The drift threshold is looser than the plain service
    # gate: every round runs real TCP worker nodes, so wall numbers are
    # noisier than the in-process paths.
    cluster_gate() {
        echo "== cluster gate (warm >=30 jobs/s at 4 nodes, <=50% drift vs BENCH_cluster.json) =="
        ./target/release/loadgen --cluster --out "$smoke_dir/cluster.json" >/dev/null
        ./target/release/bench_compare BENCH_cluster.json "$smoke_dir/cluster.json" \
            --cluster --threshold 50 --min-warm-jps 30
    }
    if ! cluster_gate; then
        echo "-- cluster gate tripped; re-measuring once --"
        cluster_gate
    fi
fi

echo "CI OK"
