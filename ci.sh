#!/bin/sh
# Offline CI: build, test, lint. No network access is required or used.
#
#   ./ci.sh          # the full tier-1 gate
#
# Mirrors what reviewers run locally; keep it fast and deterministic.
set -eu

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --offline

echo "== test (workspace) =="
cargo test --workspace -q --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
