#!/bin/sh
# Offline CI: build, test, lint. No network access is required or used.
#
#   ./ci.sh          # the full tier-1 gate
#
# Mirrors what reviewers run locally; keep it fast and deterministic.
set -eu

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --offline

echo "== test (workspace) =="
cargo test --workspace -q --offline

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== speculative probing determinism smoke =="
# --probe-threads must be a pure wall-clock optimisation: a 2-thread run of
# the small suite has to be bit-identical (calls, sizes, cache totals) to
# the sequential one.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/eval --experiment fig8a --programs 1 --scale 0.5 \
    --probe-threads 1 --json "$smoke_dir/seq.json" >/dev/null
./target/release/eval --experiment fig8a --programs 1 --scale 0.5 \
    --probe-threads 2 --json "$smoke_dir/par.json" >/dev/null
./target/release/bench_compare --identical "$smoke_dir/seq.json" "$smoke_dir/par.json"

# Optional wall-time gate against the committed baseline: BENCH_GATE=1 ./ci.sh
if [ "${BENCH_GATE:-0}" = "1" ]; then
    echo "== bench gate (<=10% wall regression vs BENCH_baseline.json) =="
    ./target/release/eval --experiment fig8a --programs 2 --scale 0.6 \
        --json "$smoke_dir/current.json" >/dev/null
    ./target/release/bench_compare BENCH_baseline.json "$smoke_dir/current.json"
fi

echo "CI OK"
