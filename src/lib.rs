//! **Logical Bytecode Reduction** — a Rust reproduction of Kalhauge &
//! Palsberg, PLDI 2021.
//!
//! Reducing a failure-inducing input is hard when the input has internal
//! dependencies: most sub-inputs are invalid. This workspace reproduces
//! the paper's approach — model the dependencies with *propositional
//! logic* so every satisfying assignment is a valid sub-input, then search
//! with **Generalized Binary Reduction**, which interleaves runs of the
//! buggy tool with minimal-satisfying-assignment computations.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`logic`] — CNF, MSA, DPLL, model counting,
//! * [`core`] — GBR, Binary Reduction, ddmin, lossy encodings, graphs,
//! * [`fji`] — Featherweight Java with Interfaces (the paper's formal
//!   core, Section 3),
//! * [`classfile`] — the JVM-style class-file substrate,
//! * [`jreduce`] — the bytecode item model, constraint generation and
//!   strategy drivers,
//! * [`decompiler`] — the simulated buggy tool and oracle,
//! * [`workload`] — NJR-like benchmark generation.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduced tables and figures.

#![warn(missing_docs)]

pub use lbr_classfile as classfile;
pub use lbr_core as core;
pub use lbr_decompiler as decompiler;
pub use lbr_fji as fji;
pub use lbr_jreduce as jreduce;
pub use lbr_logic as logic;
pub use lbr_workload as workload;
